// Worstcase: build the paper's Figure 5 family for growing n and verify the
// space bounds of Section 4.5: RDT-LGC retains exactly n checkpoints per
// process (n(n+1) transiently), while the synchronous optimum would be
// bounded by n(n+1)/2 globally.
//
//	go run ./examples/worstcase
package main

import (
	"fmt"
	"log"

	rdt "repro"
)

func main() {
	fmt.Println("n | per-process retained | global steady | global peak | n(n+1) bound")
	fmt.Println("--+----------------------+---------------+-------------+-------------")
	for _, n := range []int{2, 4, 8, 16} {
		sys, err := rdt.New(n)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Run(rdt.WorstCase(n)); err != nil {
			log.Fatal(err)
		}

		perProc := sys.RetainedCounts()
		steady := 0
		for _, c := range perProc {
			steady += c
		}

		// Every process takes one more checkpoint simultaneously: storage
		// transiently needs n+1 slots per process.
		var wave rdt.Script
		wave.N = n
		for q := 0; q < n; q++ {
			wave.Checkpoint(q)
		}
		if err := sys.Run(wave); err != nil {
			log.Fatal(err)
		}
		peak := 0
		for i := 0; i < n; i++ {
			peak += sys.StorageStats(i).Peak
		}
		fmt.Printf("%2d| %20d | %13d | %11d | %d\n", n, perProc[0], steady, peak, n*(n+1))
	}
	fmt.Println("\nTheorem 5: no asynchronous collector can beat these numbers —")
	fmt.Println("the retained checkpoints are exactly those causal knowledge cannot prove obsolete.")
}
