// Package examples holds no library code — only the smoke test that keeps
// every runnable example in this directory building and exiting cleanly.
package examples

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesRun builds every examples/* binary and runs it with a
// timeout, asserting a zero exit. Each example is a self-contained demo of
// the public API, so this is end-to-end coverage of the facade. Skipped in
// -short mode: it shells out to the go tool once per example.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke tests skipped in -short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not in PATH: %v", err)
	}

	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		t.Fatal("no example directories found")
	}

	bin := t.TempDir()
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()

			exe := filepath.Join(bin, name)
			build := exec.CommandContext(ctx, goTool, "build", "-o", exe, "./examples/"+name)
			build.Dir = ".." // module root
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}

			run := exec.CommandContext(ctx, exe)
			if out, err := run.CombinedOutput(); err != nil {
				t.Fatalf("example exited non-zero: %v\n%s", err, out)
			}
		})
	}
}
