// Swrecovery: software error recovery and causal distributed breakpoints —
// the applications that motivate rollback-dependency trackability in the
// paper's introduction. A latent bug is detected at one process some time
// after it happened; because the pattern is RD-trackable, the maximum and
// minimum consistent global checkpoints containing the last good checkpoint
// are computable directly from the stored dependency vectors, and the
// system rolls back to the maximal one (least work lost).
//
//	go run ./examples/swrecovery
package main

import (
	"fmt"
	"log"

	rdt "repro"
)

func main() {
	const n = 5
	sys, err := rdt.New(n) // FDAS + RDT-LGC
	if err != nil {
		log.Fatal(err)
	}

	// Normal execution: the bug corrupts p3's state somewhere in here.
	if err := sys.Run(rdt.Workload(rdt.Uniform, rdt.WorkloadOptions{N: n, Ops: 2000, Seed: 21})); err != nil {
		log.Fatal(err)
	}

	oracle := sys.Oracle()
	// The operator decides p3's state has been bad since after its
	// checkpoint k: everything that causally depends on later states of p3
	// is suspect. Pick the newest retained checkpoint below last_s as the
	// last known-good state.
	p := 2
	good := oracle.LastStable(p)
	target := rdt.Targets{p: good}
	retained := sys.Retained(p)
	fmt.Printf("p%d last known-good checkpoint: s^%d (of %v retained)\n", p+1, good, retained)

	// MaxStoredLine restricts the line to surviving checkpoints: a
	// garbage-collected system cannot roll back through collected ones.
	maxLine, err := sys.MaxStoredLine(target)
	if err != nil {
		log.Fatal(err)
	}
	minLine, err := rdt.MinConsistentLine(oracle, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimum consistent line containing it: %v (causal breakpoint)\n", minLine)
	fmt.Printf("maximum consistent line containing it: %v (error recovery)\n", maxLine)

	// Roll the system back to the maximal line: the least work is lost
	// while every state causally tainted by p3's post-good execution is
	// discarded.
	rep, err := sys.RollbackToLine(maxLine, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rolled back processes: %v\n", rep.RolledBack)

	// Execution resumes; the pattern stays RD-trackable and garbage
	// collection keeps working.
	if err := sys.Run(rdt.Workload(rdt.Uniform, rdt.WorkloadOptions{N: n, Ops: 500, Seed: 22})); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after resuming, retained per process: %v (bound %d each)\n", sys.RetainedCounts(), n)
	if !sys.Oracle().IsRDT() {
		log.Fatal("pattern lost RDT — bug")
	}
}
