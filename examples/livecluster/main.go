// Livecluster: the "practical environment" evaluation the paper lists as
// future work — a goroutine-per-process cluster exchanging messages over an
// asynchronous lossy network while RDT-LGC collects garbage on the fly,
// with a crash and recovery in the middle.
//
//	go run ./examples/livecluster
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	rdt "repro"
)

func main() {
	const n = 5
	cluster, err := rdt.NewCluster(n, rdt.Network{
		MinDelay: 100 * time.Microsecond,
		MaxDelay: 2 * time.Millisecond,
		Loss:     0.02,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Each process is an independent goroutine: it sends to random peers
	// and takes autonomous basic checkpoints, while deliveries (and the
	// forced checkpoints FDAS injects) race against it.
	work := func(rounds int, seed int64) {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(id)))
				node := cluster.Node(id)
				for r := 0; r < rounds; r++ {
					if rng.Float64() < 0.25 {
						if err := node.Checkpoint(); err != nil {
							log.Printf("p%d: %v", id+1, err)
							return
						}
						continue
					}
					to := rng.Intn(n - 1)
					if to >= id {
						to++
					}
					if err := node.Send(to); err != nil {
						log.Printf("p%d: %v", id+1, err)
						return
					}
				}
			}(i)
		}
		wg.Wait()
		cluster.Quiesce()
	}

	work(200, 100)
	report(cluster, n, "after concurrent phase 1")

	rep, err := cluster.Recover([]int{2}, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncrashed p3 (in-transit messages lost); recovery line %v, rolled back %v\n\n",
		rep.Line, rep.RolledBack)

	work(200, 900)
	report(cluster, n, "after concurrent phase 2")
}

func report(c *rdt.Cluster, n int, title string) {
	fmt.Printf("%s:\n", title)
	for i := 0; i < n; i++ {
		basic, forced, st := c.Node(i).Stats()
		fmt.Printf("  p%d: %3d basic + %3d forced checkpoints, %d live in stable storage (bound %d), %d collected\n",
			i+1, basic, forced, st.Live, n, st.Collected)
	}
	oracle := c.Oracle()
	fmt.Printf("  linearized history: %d events; pattern RD-trackable: %v\n",
		len(c.History().Ops), oracle.IsRDT())
}
