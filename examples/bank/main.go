// Bank: a transactional application on the checkpointing middleware. Branch
// servers exchange money transfers over a real TCP loopback mesh while FDAS
// takes the forced checkpoints that keep the pattern RD-trackable and
// RDT-LGC collects obsolete checkpoints. A branch crashes mid-run; the
// recovery line guarantees the fundamental invariant of consistent global
// checkpoints: no transfer is ever applied on the credit side without its
// debit — money can be lost with in-transit messages (the model permits
// loss), but never created.
//
//	go run ./examples/bank
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/gc"
	"repro/internal/runtime"
	"repro/internal/storage"
)

const (
	branches = 4
	initial  = int64(1000)
)

func main() {
	cluster, err := runtime.NewCluster(runtime.Config{
		N:   branches,
		TCP: true,
		LocalGC: func(self, n int, st storage.Store) gc.Local {
			return core.New(self, n, st)
		},
		NewApp: func(self int) app.App {
			kv := app.NewKV()
			kv.Set("balance", initial)
			return kv
		},
		OnDeliver: func(self int, a app.App, payload []byte) {
			if len(payload) == 8 {
				a.(*app.KV).Add("balance", int64(binary.LittleEndian.Uint64(payload)))
			}
		},
		Net: runtime.NetworkOptions{MaxDelay: time.Millisecond, Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()

	fmt.Printf("%d branches, %d initial balance each (total %d), transfers over TCP\n",
		branches, initial, initial*branches)

	work := func(rounds int, seed int64) {
		var wg sync.WaitGroup
		for b := 0; b < branches; b++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(id)))
				node := cluster.Node(id)
				for k := 0; k < rounds; k++ {
					to := rng.Intn(branches - 1)
					if to >= id {
						to++
					}
					amount := int64(1 + rng.Intn(25))
					payload := make([]byte, 8)
					binary.LittleEndian.PutUint64(payload, uint64(amount))
					err := node.UpdateAndSend(to, func(a app.App) {
						a.(*app.KV).Add("balance", -amount)
					}, payload)
					if err != nil {
						log.Printf("branch %d: %v", id+1, err)
						return
					}
					if rng.Intn(5) == 0 {
						if err := node.Checkpoint(); err != nil {
							log.Printf("branch %d: %v", id+1, err)
							return
						}
					}
				}
			}(b)
		}
		wg.Wait()
		cluster.Quiesce()
	}

	work(100, 10)
	report(cluster, "after phase 1 (quiesced)")

	rep, err := cluster.Recover([]int{2}, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbranch 3 crashed; recovery line %v, rolled back %v\n", rep.Line, rep.RolledBack)
	report(cluster, "after recovery")

	work(100, 99)
	report(cluster, "after phase 2 (quiesced)")
	fmt.Println("\ninvariant: the total never exceeds the initial total — consistency")
	fmt.Println("admits losing in-flight transfers on a crash but never duplicates one.")
}

func report(c *runtime.Cluster, title string) {
	var total int64
	fmt.Printf("%s:\n", title)
	for b := 0; b < branches; b++ {
		v, _ := c.Node(b).App().(*app.KV).Get("balance")
		_, _, st := c.Node(b).Stats()
		fmt.Printf("  branch %d: balance %5d, %d checkpoints stored (bound %d)\n",
			b+1, v, st.Live, branches)
		total += v
	}
	fmt.Printf("  system total: %d (initial %d)\n", total, initial*branches)
}
