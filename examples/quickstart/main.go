// Quickstart: run a small message-passing application under FDAS
// checkpointing with RDT-LGC garbage collection and inspect what stable
// storage holds afterwards.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	rdt "repro"
)

func main() {
	const n = 4

	// A system is n middleware processes; FDAS takes the forced checkpoints
	// that guarantee rollback-dependency trackability and RDT-LGC collects
	// obsolete checkpoints using nothing but the piggybacked timestamps.
	sys, err := rdt.New(n,
		rdt.WithProtocol(rdt.FDAS),
		rdt.WithCollector(rdt.RDTLGC))
	if err != nil {
		log.Fatal(err)
	}

	// Drive it with a random application: 2000 operations of sends,
	// receives and autonomous basic checkpoints.
	script := rdt.Workload(rdt.Uniform, rdt.WorkloadOptions{N: n, Ops: 2000, Seed: 42})
	if err := sys.Run(script); err != nil {
		log.Fatal(err)
	}

	st := sys.Stats()
	fmt.Printf("executed: %d basic + %d forced checkpoints, %d messages\n",
		st.Basic, st.Forced, st.Delivered)

	// Section 4.5 of the paper: a process never retains more than n stable
	// checkpoints under RDT-LGC.
	fmt.Println("\nstable storage per process (bound = n = 4):")
	for i, retained := range sys.RetainedCounts() {
		fmt.Printf("  p%d: %d checkpoints %v\n", i+1, retained, sys.Retained(i))
	}

	// The ground-truth oracle confirms the pattern is RD-trackable and that
	// everything collected was indeed obsolete.
	oracle := sys.Oracle()
	fmt.Printf("\npattern is RD-trackable: %v\n", oracle.IsRDT())
	obsolete, kept := 0, 0
	for i := 0; i < n; i++ {
		live := map[int]bool{}
		for _, idx := range sys.Retained(i) {
			live[idx] = true
		}
		for g := 0; g <= oracle.LastStable(i); g++ {
			if oracle.Obsolete(i, g) {
				obsolete++
				if live[g] {
					kept++
				}
			}
		}
	}
	fmt.Printf("obsolete checkpoints: %d total, %d not yet identifiable from causal knowledge\n",
		obsolete, kept)
	fmt.Printf("asynchronous collection ratio: %.4f\n",
		float64(obsolete-kept)/float64(obsolete))
}
