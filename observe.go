package rdt

import (
	"net"

	"repro/internal/obs"
	"repro/internal/trace"
)

// MetricsRegistry collects live telemetry — counters, gauges and latency
// histograms — from every layer of an instrumented system: kernel
// checkpoint/delivery/piggyback activity, sender-pool churn, wire traffic,
// stable-store latencies, chaos verdicts. See internal/obs for the metric
// name catalogue.
type MetricsRegistry = obs.Registry

// MetricsSnapshot is a point-in-time copy of a registry's values.
type MetricsSnapshot = obs.Snapshot

// FlightRecorder captures the protocol event stream (sends, deliveries,
// checkpoints, rollbacks, collects, crashes, restarts) into a bounded ring.
type FlightRecorder = obs.Recorder

// FlightEvent is one recorded protocol event.
type FlightEvent = obs.Event

// NewMetricsRegistry returns an empty registry ready to attach via
// WithObservability.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewFlightRecorder returns a flight recorder holding the most recent
// `size` events (obs.DefaultRecorderSize when size <= 0).
func NewFlightRecorder(size int) *FlightRecorder { return obs.NewRecorder(size) }

// WithObservability attaches a metrics registry and/or flight recorder to
// the system under construction. Either may be nil; instrumentation that is
// not attached costs nothing. The same registry may observe several systems
// (their counts aggregate); a recorder interleaves events from everything
// it watches.
func WithObservability(reg *MetricsRegistry, rec *FlightRecorder) Option {
	return func(o *options) { o.obs = obs.Options{Registry: reg, Recorder: rec} }
}

// RenderFlight draws the recorder's capture as a space-time diagram (one
// timeline per process, in the style of the paper's figures). Deliveries
// whose send was evicted from the ring are elided, so a wrapped recorder
// still renders.
func RenderFlight(n int, rec *FlightRecorder) string {
	return trace.Render(trace.FromEvents(n, rec.Events()))
}

// ServeDebug starts an HTTP listener on addr exposing /metrics (plain text,
// ?format=json), /trace (flight-recorder JSONL), /debug/vars (expvar) and
// /debug/pprof. It returns the bound listener (addr may use port 0); close
// it to stop serving.
func ServeDebug(addr string, reg *MetricsRegistry, rec *FlightRecorder) (net.Listener, error) {
	return obs.ServeDebug(addr, reg, rec)
}
