package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
)

func TestDocFileRoundTrip(t *testing.T) {
	doc := bench.Doc{
		GOMAXPROCS: 1, GoVersion: "go1.24", Quick: true, Sizes: []int{4, 8},
		Results: []bench.Result{
			{Path: "vclock/merge", N: 4, Iters: 100, NsPerOp: 8.5},
		},
	}
	path := filepath.Join(t.TempDir(), "BENCH_core.json")
	if err := writeDoc(path, doc); err != nil {
		t.Fatal(err)
	}
	re, err := readDoc(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Results) != 1 || re.Results[0].Path != "vclock/merge" || re.GoVersion != doc.GoVersion {
		t.Fatalf("round trip changed the doc: %+v", re)
	}
}

func TestReadDocRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readDoc(path); err == nil {
		t.Fatal("readDoc accepted garbage")
	}
}

func TestMetricsColumn(t *testing.T) {
	r := bench.Result{Metrics: map[string]float64{"retained-mean": 1.5, "collect-ratio": 0.9}}
	got := metricsCol(r)
	want := "collect-ratio=0.90 retained-mean=1.50" // sorted key order
	if got != want {
		t.Fatalf("metricsCol = %q, want %q", got, want)
	}
	if got := metricsCol(bench.Result{}); got != "-" {
		t.Fatalf("empty metrics rendered %q, want -", got)
	}
}
