// Command bench runs the unified hot-path performance harness
// (internal/bench) and gates regressions against the checked-in baseline.
//
// The harness measures the per-message cost centers of the middleware —
// vclock merge/clone, the FDAS forced-checkpoint decision, the RDT-LGC
// collect path, checkpoint encoding and durable save/rehydrate, transport
// framing, live-runtime end-to-end delivery, and full simulator runs —
// swept across n ∈ {4, 8, 16, 32, 64, 128}, reporting ns/op, B/op,
// allocs/op and the paper-predicted metrics (retained checkpoints,
// collection ratio).
//
// Modes:
//
//	go run ./cmd/bench                       # human-readable table (full budget)
//	go run ./cmd/bench -quick -out BENCH_core.json   # record the gate baseline
//	go run ./cmd/bench -quick -check BENCH_core.json   # the CI perf gate:
//	    exit non-zero on any allocs/op regression, or an ns/op regression
//	    beyond -tolerance after cross-machine speed normalization
//
// The baseline must be recorded in the same mode the gate measures with
// (-quick); -check refuses a mode-mismatched baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"slices"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/sweep"
)

func main() {
	var (
		sizes     = flag.String("sizes", "4,8,16,32,64,128,256,512,1024", "comma-separated process counts")
		quick     = flag.Bool("quick", false, "short per-case budget (CI-sized run)")
		jsonOut   = flag.Bool("json", false, "emit the JSON document instead of the table")
		outFile   = flag.String("out", "", "also write the JSON document to this file")
		check     = flag.String("check", "", "baseline JSON to gate against; exit 1 on regression")
		tolerance = flag.Float64("tolerance", 0.30, "fractional ns/op regression tolerated by -check")
		filter    = flag.String("filter", "", "only run cases whose path contains this substring")
		thru      = flag.Bool("throughput", false, "run the offered-load throughput sweep instead of the hot-path suite")
		metrics   = flag.Bool("metrics", false, "throughput mode: attach a live metrics registry and print its snapshot after the sweep")
		debugHTTP = flag.String("debug-http", "", "throughput mode: serve /metrics, expvar and pprof on this address while the sweep runs")
	)
	flag.Parse()

	if (*metrics || *debugHTTP != "") && !*thru {
		// The hot-path suite measures allocs/op down to zero; attaching a
		// registry there would measure the instrumentation, not the system.
		fmt.Fprintln(os.Stderr, "bench: -metrics and -debug-http require -throughput")
		os.Exit(2)
	}
	if *thru {
		runThroughput(*quick, *jsonOut, *metrics, *outFile, *check, *debugHTTP, *tolerance, *filter, *sizes)
		return
	}

	ns, err := sweep.ParseSizes(*sizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// The gate's missing-case rule (bench coverage must not shrink) means
	// a partial run can never pass -check, and a partial -out would record
	// a baseline that silently gates only a subset from then on: refuse
	// both combinations rather than let the gate erode.
	if (*check != "" || *outFile != "") && (*filter != "" || !slices.Equal(ns, bench.DefaultSizes)) {
		fmt.Fprintln(os.Stderr, "bench: -check and -out require the full suite; drop -filter and non-default -sizes")
		os.Exit(2)
	}

	cases := bench.Suite(ns)
	opts := bench.Options{BenchTime: bench.DefaultBenchTime, Filter: *filter}
	if *quick {
		opts.BenchTime = bench.QuickBenchTime
	}

	start := time.Now()
	results, err := bench.Run(cases, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	doc := bench.NewDoc(ns, *quick, results, time.Since(start))

	if *outFile != "" {
		if err := writeDoc(*outFile, doc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		writeTable(os.Stdout, results)
	}

	if *check != "" {
		base, err := readDoc(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if base.Quick != *quick {
			fmt.Fprintf(os.Stderr,
				"bench: %s was recorded with quick=%v but this run used quick=%v; "+
					"the gate is only meaningful mode-for-mode (re-record with -quick -out)\n",
				*check, base.Quick, *quick)
			os.Exit(2)
		}
		// A baseline that does not cover the whole suite (recorded by an
		// older binary, or hand-edited) would gate only a subset; demand a
		// re-record instead of pretending the uncovered cases passed.
		have := make(map[string]bool, len(base.Results))
		for _, r := range base.Results {
			have[fmt.Sprintf("%s#%d", r.Path, r.N)] = true
		}
		uncovered := 0
		example := ""
		for _, c := range cases {
			if k := fmt.Sprintf("%s#%d", c.Path, c.N); !have[k] {
				uncovered++
				if example == "" {
					example = fmt.Sprintf("%s n=%d", c.Path, c.N)
				}
			}
		}
		if uncovered > 0 {
			fmt.Fprintf(os.Stderr,
				"bench: %s lacks %d suite case(s) (e.g. %s); re-record the baseline with -quick -out\n",
				*check, uncovered, example)
			os.Exit(2)
		}
		regs := bench.Compare(cases, base, results, *tolerance)
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "bench: %d regression(s) against %s:\n", len(regs), *check)
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: no regressions against %s (%d cases, ns tolerance %.0f%%, allocs exact)\n",
			*check, len(results), *tolerance*100)
	}
}

// runThroughput is the -throughput mode: the closed-loop offered-load
// sweep (internal/bench.RunThroughput) with the same record/check contract
// as the hot-path suite — BENCH_throughput.json is recorded with
// -quick -out and gated mode-for-mode with -quick -check.
func runThroughput(quick, jsonOut, metrics bool, outFile, check, debugHTTP string, tolerance float64, filter, sizes string) {
	if filter != "" || sizes != "4,8,16,32,64,128,256,512,1024" {
		fmt.Fprintln(os.Stderr, "bench: -throughput always runs its full grid; drop -filter and -sizes")
		os.Exit(2)
	}
	// Instrumented runs measure the instrumented system, so they must not
	// record or gate the uninstrumented baseline.
	if (metrics || debugHTTP != "") && (outFile != "" || check != "") {
		fmt.Fprintln(os.Stderr, "bench: -metrics/-debug-http runs cannot -out or -check a baseline")
		os.Exit(2)
	}
	var reg *obs.Registry
	if metrics || debugHTTP != "" {
		reg = obs.NewRegistry()
	}
	if debugHTTP != "" {
		ln, err := obs.ServeDebug(debugHTTP, reg, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "bench: debug listener on http://%s/\n", ln.Addr())
	}
	doc, err := bench.RunThroughput(quick, reg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if metrics {
		if err := reg.Snapshot().WriteText(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if outFile != "" {
		if err := writeDoc(outFile, doc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		writeThroughputTable(os.Stdout, doc.Results)
	}
	if check != "" {
		data, err := os.ReadFile(check)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var base bench.ThroughputDoc
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "bench: parse %s: %v\n", check, err)
			os.Exit(1)
		}
		if base.Quick != quick {
			fmt.Fprintf(os.Stderr,
				"bench: %s was recorded with quick=%v but this run used quick=%v; "+
					"re-record with -throughput -quick -out\n", check, base.Quick, quick)
			os.Exit(2)
		}
		// Throughput scales with scheduler parallelism, so msgs/sec gates
		// are only meaningful at matching GOMAXPROCS — the geometric-mean
		// normalization corrects machine speed, not parallelism shape.
		if base.GOMAXPROCS != doc.GOMAXPROCS {
			fmt.Fprintf(os.Stderr,
				"bench: %s was recorded at GOMAXPROCS=%d but this run used %d; "+
					"re-record with -throughput -out at this setting\n",
				check, base.GOMAXPROCS, doc.GOMAXPROCS)
			os.Exit(2)
		}
		regs := bench.CompareThroughput(base, doc, tolerance)
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "bench: %d throughput regression(s) against %s:\n", len(regs), check)
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr,
			"bench: no throughput regressions against %s (%d cells, tolerance %.0f%%, pool/spawn floor enforced)\n",
			check, len(doc.Results), tolerance*100)
	}
}

func writeThroughputTable(w *os.File, results []bench.ThroughputResult) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "engine\tn\twindow\tmsgs\tmsgs/sec\tp50 µs\tp99 µs")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.0f\t%.1f\t%.1f\n",
			r.Engine, r.N, r.Window, r.Msgs, r.MsgsPerSec, r.P50Ns/1e3, r.P99Ns/1e3)
	}
	_ = tw.Flush()
}

func writeTable(w *os.File, results []bench.Result) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "path\tn\titers\tns/op\tB/op\tallocs/op\tmetrics")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%.1f\t%.2f\t%s\n",
			r.Path, r.N, r.Iters, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, metricsCol(r))
	}
	_ = tw.Flush()
}

func metricsCol(r bench.Result) string {
	if len(r.Metrics) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%.2f", k, r.Metrics[k])
	}
	return strings.Join(parts, " ")
}

func writeDoc(path string, doc any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func readDoc(path string) (bench.Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return bench.Doc{}, err
	}
	var doc bench.Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		return bench.Doc{}, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return doc, nil
}
