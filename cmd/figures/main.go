// Command figures regenerates the paper's Figures 1-5 as ASCII space-time
// diagrams and re-derives every fact the paper states about them, printing
// PASS/FAIL per fact. Run with -fig N for a single figure or no flag for
// all. Figures render concurrently on the experiment engine's worker pool
// (internal/sweep) and print in figure order.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"reflect"
	"runtime"
	"sort"

	rdt "repro"
	"repro/internal/ccp"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// rendered is one figure's buffered output plus whether its facts held.
type rendered struct {
	out []byte
	ok  bool
}

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (1-5); 0 = all")
	dot := flag.Bool("dot", false, "emit the figure(s) as Graphviz digraphs instead of ASCII + facts")
	workers := flag.Int("workers", runtime.NumCPU(), "figures rendered concurrently (output order is fixed)")
	flag.Parse()

	if *dot {
		emitDOT(*fig)
		return
	}

	figs := allFigures()
	if *fig != 0 {
		if *fig < 1 || *fig > len(figs) {
			fmt.Fprintf(os.Stderr, "figures: no figure %d (have 1-%d)\n", *fig, len(figs))
			os.Exit(2)
		}
		figs = figs[*fig-1 : *fig]
	}

	results, err := renderAll(*workers, figs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ok := true
	for _, r := range results {
		os.Stdout.Write(r.out)
		ok = ok && r.ok
	}
	if !ok {
		os.Exit(1)
	}
}

// allFigures lists the figure renderers in paper order.
func allFigures() []func(io.Writer) bool {
	return []func(io.Writer) bool{fig1, fig2, fig3, fig4, fig5}
}

// renderAll renders the figures concurrently on the experiment engine's
// pool, each into its own buffer, preserving figure order.
func renderAll(workers int, figs []func(io.Writer) bool) ([]rendered, error) {
	return sweep.Map(workers, figs, func(f func(io.Writer) bool) (rendered, error) {
		var b bytes.Buffer
		ok := f(&b)
		return rendered{b.Bytes(), ok}, nil
	})
}

// emitDOT prints Graphviz for the requested figure (0 = all); pipe through
// `dot -Tsvg` to render space-time diagrams.
func emitDOT(fig int) {
	figs := []struct {
		title  string
		script ccp.Script
	}{
		{"Figure 1 - example CCP", rdt.Figure1(true)},
		{"Figure 2 - domino effect", rdt.Figure2()},
		{"Figure 3 - recovery line", fig3Script()},
		{"Figure 4 - RDT-LGC execution", rdt.Figure4()},
		{"Figure 5 - worst case (n=4)", rdt.WorstCase(4)},
	}
	for i, f := range figs {
		if fig != 0 && fig != i+1 {
			continue
		}
		fmt.Println(trace.DOT(f.script, f.title))
	}
}

func fig3Script() ccp.Script {
	s, _ := rdt.Figure3()
	return s
}

func check(w io.Writer, ok *bool, cond bool, fact string) {
	status := "PASS"
	if !cond {
		status = "FAIL"
		*ok = false
	}
	fmt.Fprintf(w, "  [%s] %s\n", status, fact)
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

func fig1(w io.Writer) bool {
	ok := true
	header(w, "Figure 1 — example CCP (C-paths, Z-paths, RDT)")
	f := ccp.NewFig1(true)
	fmt.Fprintln(w, trace.Render(f.Script))
	c := f.Script.BuildCCP()
	s01 := ccp.CheckpointID{Process: 0, Index: 0}
	s11 := ccp.CheckpointID{Process: 0, Index: 1}
	s13 := ccp.CheckpointID{Process: 2, Index: 1}
	s23 := ccp.CheckpointID{Process: 2, Index: 2}
	check(w, &ok, c.IsCausalPath([]int{f.M1, f.M2}, s01, s13), "[m1,m2] is a C-path")
	check(w, &ok, c.IsCausalPath([]int{f.M1, f.M4}, s01, s23), "[m1,m4] is a C-path")
	check(w, &ok, c.IsZigzagPath([]int{f.M5, f.M4}, s11, s23) &&
		!c.IsCausalPath([]int{f.M5, f.M4}, s11, s23), "[m5,m4] is a Z-path (non-causal)")
	check(w, &ok, c.IsRDT(), "CCP is RD-trackable")

	g := ccp.NewFig1(false)
	cw := g.Script.BuildCCP()
	check(w, &ok, !cw.IsRDT(), "without m3 the CCP is not RD-trackable")
	check(w, &ok, cw.ZigzagReachable(s11, s23) && !cw.CausallyPrecedes(s11, s23),
		"without m3: s_1^1 ⤳ s_3^2 but s_1^1 ↛ s_3^2")
	return ok
}

func fig2(w io.Writer) bool {
	ok := true
	header(w, "Figure 2 — useless checkpoints and the domino effect")
	f := ccp.NewFig2()
	fmt.Fprintln(w, trace.Render(f.Script))
	c := f.Script.BuildCCP()
	s11 := ccp.CheckpointID{Process: 0, Index: 1}
	check(w, &ok, c.IsZigzagPath([]int{f.M2, f.M1}, s11, s11), "[m2,m1] is a zigzag cycle through s_1^1")
	useless := c.UselessCheckpoints()
	check(w, &ok, len(useless) == 3, fmt.Sprintf("all %d non-initial stable checkpoints are useless", len(useless)))
	check(w, &ok, c.IsConsistentGlobal([]int{0, 0}), "the only stable consistent global checkpoint is {s_1^0, s_2^0}")
	return ok
}

func fig3(w io.Writer) bool {
	ok := true
	header(w, "Figure 3 — recovery line for F = {p2, p3}")
	f := ccp.NewFig3()
	fmt.Fprintln(w, trace.Render(f.Script))
	c := f.Script.BuildCCP()
	line := c.RecoveryLine(f.Faulty)
	fmt.Fprintf(w, "  recovery line (local indices): %v\n", line)
	check(w, &ok, c.IsConsistentGlobal(line), "recovery line is a consistent global checkpoint")
	check(w, &ok, c.CausallyPrecedes(
		ccp.CheckpointID{Process: 1, Index: 3}, ccp.CheckpointID{Process: 2, Index: 3}),
		"s_2^last → s_3^last, so s_3^last is excluded from the line")
	check(w, &ok, line[2] == 2, "p3's component is s_3^{last-1}")
	got := c.ObsoleteSet()
	want := f.PaperObsolete()
	sortIDs(got)
	sortIDs(want)
	check(w, &ok, reflect.DeepEqual(got, want),
		fmt.Sprintf("exactly five obsolete checkpoints: %v (paper: c_2^7, c_2^9, c_3^8, c_4^6, c_4^8)", got))
	return ok
}

func fig4(w io.Writer) bool {
	ok := true
	header(w, "Figure 4 — execution of RDT-LGC")
	script := rdt.Figure4()
	fmt.Fprintln(w, trace.Render(script))
	sys, err := rdt.New(3)
	if err != nil {
		fmt.Fprintln(w, "  error:", err)
		return false
	}
	if err := sys.Run(script); err != nil {
		fmt.Fprintln(w, "  error:", err)
		return false
	}
	oracle := sys.Oracle()
	lastS := make([]int, 3)
	stored := make([][]int, 3)
	for p := 0; p < 3; p++ {
		lastS[p] = oracle.LastStable(p)
		stored[p] = sys.Retained(p)
	}
	fmt.Fprintln(w, trace.RenderStores(lastS, stored))
	fmt.Fprintln(w, "  "+trace.Legend())
	check(w, &ok, !contains(stored[1], 2), "s_2^2 was eliminated")
	check(w, &ok, !contains(stored[2], 1), "s_3^1 was eliminated")
	check(w, &ok, !contains(stored[2], 2), "s_3^2 was eliminated")
	check(w, &ok, contains(stored[1], 1) && oracle.Obsolete(1, 1),
		"s_2^1 is obsolete but retained — the only one causal knowledge cannot identify")
	return ok
}

func fig5(w io.Writer) bool {
	ok := true
	header(w, "Figure 5 — worst-case scenario (n = 4)")
	const n = 4
	sys, err := rdt.New(n)
	if err != nil {
		fmt.Fprintln(w, "  error:", err)
		return false
	}
	if err := sys.Run(rdt.WorstCase(n)); err != nil {
		fmt.Fprintln(w, "  error:", err)
		return false
	}
	oracle := sys.Oracle()
	lastS := make([]int, n)
	stored := make([][]int, n)
	total := 0
	for p := 0; p < n; p++ {
		lastS[p] = oracle.LastStable(p)
		stored[p] = sys.Retained(p)
		total += len(stored[p])
	}
	fmt.Fprintln(w, trace.RenderStores(lastS, stored))
	check(w, &ok, total == n*n, fmt.Sprintf("steady state stores n^2 = %d checkpoints (got %d)", n*n, total))
	var wave rdt.Script
	wave.N = n
	for q := 0; q < n; q++ {
		wave.Checkpoint(q)
	}
	if err := sys.Run(wave); err != nil {
		fmt.Fprintln(w, "  error:", err)
		return false
	}
	peak := 0
	for p := 0; p < n; p++ {
		peak += sys.StorageStats(p).Peak
	}
	check(w, &ok, peak == n*(n+1), fmt.Sprintf("simultaneous checkpoint wave peaks at n(n+1) = %d (got %d)", n*(n+1), peak))
	return ok
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func sortIDs(ids []ccp.CheckpointID) {
	sort.Slice(ids, func(a, b int) bool {
		if ids[a].Process != ids[b].Process {
			return ids[a].Process < ids[b].Process
		}
		return ids[a].Index < ids[b].Index
	})
}
