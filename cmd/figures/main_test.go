package main

import (
	"bytes"
	"io"
	"testing"
)

// TestAllFigureFactsPass executes every figure regeneration exactly as the
// CLI does and fails if any stated paper fact stops holding.
func TestAllFigureFactsPass(t *testing.T) {
	for i, f := range allFigures() {
		if !f(io.Discard) {
			t.Errorf("figure %d facts failed", i+1)
		}
	}
}

// TestParallelRenderIsDeterministic renders all figures serially and on a
// saturated pool through the CLI's own renderAll and requires
// byte-identical concatenated output — the same contract the sweep tables
// carry.
func TestParallelRenderIsDeterministic(t *testing.T) {
	figs := allFigures()
	render := func(workers int) []byte {
		results, err := renderAll(workers, figs)
		if err != nil {
			t.Fatal(err)
		}
		var all bytes.Buffer
		for _, r := range results {
			if !r.ok {
				t.Fatal("figure facts failed")
			}
			all.Write(r.out)
		}
		return all.Bytes()
	}
	serial := render(1)
	parallel := render(len(figs))
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel figure output differs from serial (%d vs %d bytes)",
			len(parallel), len(serial))
	}
}
