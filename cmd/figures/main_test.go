package main

import "testing"

// TestAllFigureFactsPass executes every figure regeneration exactly as the
// CLI does and fails if any stated paper fact stops holding.
func TestAllFigureFactsPass(t *testing.T) {
	for i, f := range []func() bool{fig1, fig2, fig3, fig4, fig5} {
		if !f() {
			t.Errorf("figure %d facts failed", i+1)
		}
	}
}
