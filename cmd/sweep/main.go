// Command sweep runs the experiment grids of EXPERIMENTS.md — the
// "evaluation in a practical environment" the paper lists as future work.
// Two tables are available:
//
//	-table collectors   every workload × collector × size: steady-state
//	                    retained checkpoints and collection ratios (E1)
//	-table protocols    every workload × protocol × size: forced-checkpoint
//	                    overhead of the RDT protocol hierarchy
//	-table rollback     every workload × protocol × size: rollback
//	                    propagation after crashes (Agbaria et al. axis)
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/workload"
)

func main() {
	var (
		ops    = flag.Int("ops", 3000, "operations per run")
		seeds  = flag.Int("seeds", 3, "seeds averaged per cell")
		sizes  = flag.String("sizes", "4,8,16", "comma-separated process counts")
		pcheck = flag.Float64("pcheckpoint", 0.2, "basic checkpoint probability")
		every  = flag.Int("globalevery", 1, "events between control-message rounds for the global collectors (sync-opt, rl-gc)")
		table  = flag.String("table", "collectors", "table to produce: collectors|protocols")
	)
	flag.Parse()

	ns, err := parseSizes(*sizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if *table == "protocols" {
		protocolTable(w, ns, *ops, *seeds, *pcheck)
		if err := w.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *table == "rollback" {
		rollbackTable(w, ns, *ops, *seeds, *pcheck)
		if err := w.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *table != "collectors" {
		fmt.Fprintf(os.Stderr, "sweep: unknown table %q\n", *table)
		os.Exit(2)
	}
	fmt.Fprintln(w, "workload\tn\tcollector\tretained/proc mean\tretained/proc max\tglobal peak\tcollect ratio\tforced ckpts")
	for _, kind := range workload.Kinds() {
		for _, n := range ns {
			for _, col := range metrics.CollectorKinds() {
				var mean, ratio float64
				var max, peak, forced int
				for s := 0; s < *seeds; s++ {
					script := workload.Generate(kind, workload.Options{
						N: n, Ops: *ops, Seed: int64(1000*s + n), PCheckpoint: *pcheck,
					})
					rep, err := metrics.Measure(metrics.MeasureOptions{
						N: n, Collector: col, Script: script, GlobalEvery: *every,
					})
					if err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					mean += rep.PerProcRetained.Mean()
					ratio += rep.CollectionRatio()
					if rep.PerProcRetained.Max() > max {
						max = rep.PerProcRetained.Max()
					}
					if rep.GlobalRetained.Max() > peak {
						peak = rep.GlobalRetained.Max()
					}
					forced += rep.Forced
				}
				k := float64(*seeds)
				fmt.Fprintf(w, "%s\t%d\t%s\t%.2f\t%d\t%d\t%.4f\t%d\n",
					kind, n, col, mean/k, max, peak, ratio/k, forced / *seeds)
			}
		}
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// protocolTable reports the forced-checkpoint overhead of each protocol:
// the price of the RDT guarantee, per workload and system size.
func protocolTable(w *tabwriter.Writer, ns []int, ops, seeds int, pcheck float64) {
	factories := []struct {
		name string
		mk   func() protocol.Protocol
		rdt  bool
	}{
		{"CBR", func() protocol.Protocol { return protocol.NewCBR() }, true},
		{"Russell", func() protocol.Protocol { return protocol.NewRussell() }, true},
		{"FDI", func() protocol.Protocol { return protocol.NewFDI() }, true},
		{"FDAS", func() protocol.Protocol { return protocol.NewFDAS() }, true},
		{"BCS", func() protocol.Protocol { return protocol.NewBCS() }, false},
		{"none", func() protocol.Protocol { return protocol.NewNone() }, false},
	}
	fmt.Fprintln(w, "workload\tn\tprotocol\tRDT\tbasic\tforced\tforced/basic\tretained/proc mean")
	for _, kind := range workload.Kinds() {
		for _, n := range ns {
			for _, pf := range factories {
				var basic, forced int
				var mean float64
				for s := 0; s < seeds; s++ {
					script := workload.Generate(kind, workload.Options{
						N: n, Ops: ops, Seed: int64(1000*s + n), PCheckpoint: pcheck,
					})
					mk := pf.mk
					rep, err := metrics.Measure(metrics.MeasureOptions{
						N: n, Collector: metrics.RDTLGC, Script: script,
						Protocol: func(int) protocol.Protocol { return mk() },
					})
					if err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					basic += rep.Basic
					forced += rep.Forced
					mean += rep.PerProcRetained.Mean()
				}
				ratio := 0.0
				if basic > 0 {
					ratio = float64(forced) / float64(basic)
				}
				fmt.Fprintf(w, "%s\t%d\t%s\t%v\t%d\t%d\t%.2f\t%.2f\n",
					kind, n, pf.name, pf.rdt, basic/seeds, forced/seeds, ratio, mean/float64(seeds))
			}
		}
	}
}

// rollbackTable reports rollback propagation per protocol: mean and max
// stable checkpoints a crash drags non-faulty processes back.
func rollbackTable(w *tabwriter.Writer, ns []int, ops, seeds int, pcheck float64) {
	factories := []struct {
		name string
		mk   func() protocol.Protocol
	}{
		{"FDAS", func() protocol.Protocol { return protocol.NewFDAS() }},
		{"FDI", func() protocol.Protocol { return protocol.NewFDI() }},
		{"CBR", func() protocol.Protocol { return protocol.NewCBR() }},
		{"Russell", func() protocol.Protocol { return protocol.NewRussell() }},
		{"BCS", func() protocol.Protocol { return protocol.NewBCS() }},
		{"none", func() protocol.Protocol { return protocol.NewNone() }},
	}
	fmt.Fprintln(w, "workload\tn\tprotocol\tmean rolled\tmax rolled\tvolatile lost\tdomino-to-start")
	for _, kind := range workload.Kinds() {
		for _, n := range ns {
			for _, pf := range factories {
				var mean float64
				var max, lost, domino, crashes int
				for s := 0; s < seeds; s++ {
					script := workload.Generate(kind, workload.Options{
						N: n, Ops: ops, Seed: int64(1000*s + n), PCheckpoint: pcheck,
					})
					mk := pf.mk
					rep, err := metrics.MeasureRollback(metrics.RollbackOptions{
						N: n, Script: script,
						Protocol: func(int) protocol.Protocol { return mk() },
					})
					if err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					mean += rep.StableRolled.Mean()
					if rep.StableRolled.Max() > max {
						max = rep.StableRolled.Max()
					}
					lost += rep.VolatileLost
					domino += rep.DominoToStart
					crashes += rep.Crashes
				}
				fmt.Fprintf(w, "%s\t%d\t%s\t%.3f\t%d\t%.2f%%\t%d\n",
					kind, n, pf.name, mean/float64(seeds), max,
					100*float64(lost)/float64(crashes*(n-1)), domino)
			}
		}
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	var cur int
	seen := false
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if !seen {
				return nil, fmt.Errorf("sweep: bad -sizes %q", s)
			}
			out = append(out, cur)
			cur, seen = 0, false
			continue
		}
		if s[i] < '0' || s[i] > '9' {
			return nil, fmt.Errorf("sweep: bad -sizes %q", s)
		}
		cur = cur*10 + int(s[i]-'0')
		seen = true
	}
	return out, nil
}
