// Command sweep runs the experiment grids of EXPERIMENTS.md — the
// "evaluation in a practical environment" the paper lists as future work.
// Three tables are available:
//
//	-table collectors   every workload × collector × size: steady-state
//	                    retained checkpoints and collection ratios (E1)
//	-table protocols    every workload × protocol × size: forced-checkpoint
//	                    overhead of the RDT protocol hierarchy (E2)
//	-table rollback     every workload × protocol × size: rollback
//	                    propagation after crashes (Agbaria et al. axis) (E3)
//	-table compress     size × engine × piggyback mode: control-information
//	                    cost of incremental dependency-vector piggybacking,
//	                    through both kernel drivers (E6)
//
// Grid cells are independent, so the engine (internal/sweep) runs them on a
// bounded worker pool; -workers controls its size and any value renders a
// byte-identical table. -format json emits the machine-readable form with
// per-cell timings, and -bench runs the grid twice (serial, then parallel)
// and emits the comparison recorded in BENCH_sweep.json.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/sweep"
)

func main() {
	var (
		ops     = flag.Int("ops", 3000, "operations per run")
		seeds   = flag.Int("seeds", 3, "seeds averaged per cell")
		sizes   = flag.String("sizes", "4,8,16", "comma-separated process counts")
		pcheck  = flag.Float64("pcheckpoint", 0.2, "basic checkpoint probability")
		every   = flag.Int("globalevery", 1, "events between control-message rounds for the global collectors (sync-opt, rl-gc)")
		table   = flag.String("table", "collectors", "table to produce: collectors|protocols|rollback|compress")
		workers = flag.Int("workers", runtime.NumCPU(), "worker pool size (result order does not depend on it)")
		format  = flag.String("format", "text", "output format: text|json")
		bench   = flag.Bool("bench", false, "run the grid serially and with -workers, emit the timing comparison as JSON")
	)
	flag.Parse()

	tab, err := sweep.ParseTable(*table)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ns, err := sweep.ParseSizes(*sizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "sweep: unknown format %q\n", *format)
		os.Exit(2)
	}
	if *seeds < 1 {
		fmt.Fprintf(os.Stderr, "sweep: -seeds must be >= 1, got %d\n", *seeds)
		os.Exit(2)
	}

	g := sweep.Default(tab)
	g.Sizes = ns
	g.Ops = *ops
	g.Seeds = *seeds
	g.PCheckpoint = *pcheck
	g.GlobalEvery = *every
	g.Workers = *workers
	if g.Workers <= 0 {
		// Normalize here so JSON and bench output record the worker count
		// that actually ran, not the raw flag value.
		g.Workers = runtime.NumCPU()
	}

	if *bench {
		// Bench output is always the JSON comparison doc; reject an explicit
		// conflicting -format rather than silently ignoring it.
		formatSet := false
		flag.Visit(func(f *flag.Flag) { formatSet = formatSet || f.Name == "format" })
		if formatSet && *format != "json" {
			fmt.Fprintln(os.Stderr, "sweep: -bench always emits JSON; drop -format or use -format json")
			os.Exit(2)
		}
		if err := runBench(g); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	start := time.Now()
	results, err := g.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wall := time.Since(start)

	if *format == "json" {
		err = sweep.WriteJSON(os.Stdout, g, results, wall)
	} else {
		err = sweep.WriteText(os.Stdout, g.Table, results)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runBench times the same grid serially and with the requested pool, checks
// the two renderings are byte-identical, and prints a sweep.BenchDoc.
func runBench(g sweep.Grid) error {
	serial := g
	serial.Workers = 1
	t0 := time.Now()
	serialRes, err := serial.Run()
	if err != nil {
		return err
	}
	serialSecs := time.Since(t0).Seconds()

	t1 := time.Now()
	parallelRes, err := g.Run()
	if err != nil {
		return err
	}
	parallelWall := time.Since(t1)

	var a, b bytes.Buffer
	if err := sweep.WriteText(&a, g.Table, serialRes); err != nil {
		return err
	}
	if err := sweep.WriteText(&b, g.Table, parallelRes); err != nil {
		return err
	}

	doc := sweep.BenchDoc{
		Table:           g.Table.String(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Cells:           len(serialRes),
		SerialSecs:      serialSecs,
		ParallelWorkers: g.Workers,
		ParallelSecs:    parallelWall.Seconds(),
		Identical:       bytes.Equal(a.Bytes(), b.Bytes()),
		Run:             sweep.Doc(g, parallelRes, parallelWall),
	}
	if doc.ParallelSecs > 0 {
		doc.Speedup = doc.SerialSecs / doc.ParallelSecs
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
