package main

import (
	"reflect"
	"testing"

	"repro/internal/sweep"
)

func TestParseSizes(t *testing.T) {
	good := map[string][]int{
		"4":       {4},
		"4,8,16":  {4, 8, 16},
		"128":     {128},
		"2,2,2,2": {2, 2, 2, 2},
	}
	for in, want := range good {
		got, err := sweep.ParseSizes(in)
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Errorf("ParseSizes(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "4,", ",4", "a", "4,b", "4,,8"} {
		if _, err := sweep.ParseSizes(bad); err == nil {
			t.Errorf("ParseSizes(%q) should fail", bad)
		}
	}
}
