// Command rdtsim runs a parameterized checkpointing simulation and prints
// the resulting garbage-collection statistics.
//
// Example:
//
//	rdtsim -n 8 -ops 5000 -workload uniform -protocol FDAS -gc rdt-lgc -crash 3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"

	rdt "repro"
	"repro/internal/workload"
)

func main() {
	var (
		n       = flag.Int("n", 4, "number of processes")
		ops     = flag.Int("ops", 2000, "application operations to simulate")
		seed    = flag.Int64("seed", 1, "workload seed")
		wl      = flag.String("workload", "uniform", "workload: uniform|ring|client-server|bursty|all-to-all")
		proto   = flag.String("protocol", "FDAS", "protocol: FDAS|FDI|CBR|BCS|none")
		gcName  = flag.String("gc", "rdt-lgc", "collector: rdt-lgc|no-gc|sync-opt|rl-gc")
		pc      = flag.Float64("pcheckpoint", 0.2, "basic checkpoint probability")
		crash   = flag.Int("crash", -1, "crash this process after the run and recover (-1 = none)")
		useLI   = flag.Bool("li", true, "use global last-interval information during recovery")
		verbose = flag.Bool("v", false, "print per-process retained checkpoint indices")
		live    = flag.Bool("live", false, "run on the concurrent goroutine runtime instead of the deterministic simulator")
		tcp     = flag.Bool("tcp", false, "with -live: route messages over a TCP loopback mesh")
		store   = flag.String("store", "mem", "stable-storage backend: mem|file|log")
		dir     = flag.String("store-dir", "", "root directory for on-disk backends (default: a temp dir)")
	)
	flag.Parse()

	storeOpts, cleanup, err := storageOptions(*store, *dir)
	exitOn(err)
	defer cleanup()

	if *live {
		runLive(*n, *ops, *seed, *tcp, *crash, *useLI, storeOpts)
		return
	}

	kind, err := parseWorkload(*wl)
	exitOn(err)
	p, err := parseProtocol(*proto)
	exitOn(err)
	col, err := parseCollector(*gcName)
	exitOn(err)

	sys, err := rdt.New(*n, append(storeOpts, rdt.WithProtocol(p), rdt.WithCollector(col))...)
	exitOn(err)
	script := rdt.Workload(kind, rdt.WorkloadOptions{N: *n, Ops: *ops, Seed: *seed, PCheckpoint: *pc})
	exitOn(sys.Run(script))

	st := sys.Stats()
	fmt.Printf("workload=%s protocol=%s gc=%s n=%d ops=%d\n", kind, p, col, *n, *ops)
	fmt.Printf("checkpoints: basic=%d forced=%d (forced/basic = %.2f)\n",
		st.Basic, st.Forced, ratio(st.Forced, st.Basic))
	fmt.Printf("messages:    sent=%d delivered=%d\n", st.Sends, st.Delivered)

	total, peak := 0, 0
	for i := 0; i < *n; i++ {
		s := sys.StorageStats(i)
		total += s.Live
		peak += s.Peak
		if *verbose {
			fmt.Printf("  p%d retains %v\n", i+1, sys.Retained(i))
		}
	}
	fmt.Printf("storage:     live=%d (%.2f/process, bound %d) peak=%d collected=%d\n",
		total, float64(total)/float64(*n), *n, peak, collectedTotal(sys, *n))

	oracle := sys.Oracle()
	obsolete, kept := 0, 0
	for i := 0; i < *n; i++ {
		retained := map[int]bool{}
		for _, idx := range sys.Retained(i) {
			retained[idx] = true
		}
		for g := 0; g <= oracle.LastStable(i); g++ {
			if oracle.Obsolete(i, g) {
				obsolete++
				if retained[g] {
					kept++
				}
			}
		}
	}
	fmt.Printf("oracle:      obsolete=%d still-stored=%d collection-ratio=%.4f rdt=%v\n",
		obsolete, kept, ratio(obsolete-kept, obsolete), oracle.IsRDT())

	if *crash >= 0 {
		rep, err := sys.Recover([]int{*crash}, *useLI)
		exitOn(err)
		fmt.Printf("recovery:    crashed p%d, line=%v, rolled back %v, lost %d checkpoints\n",
			*crash+1, rep.Line, rep.RolledBack, rep.LostCheckpoints)
		total = 0
		for i := 0; i < *n; i++ {
			total += len(sys.Retained(i))
		}
		fmt.Printf("post-recovery storage: live=%d\n", total)
	}
}

// storageOptions resolves the -store/-store-dir flags to facade options; an
// on-disk backend without an explicit directory gets a temp dir the cleanup
// removes.
func storageOptions(store, dir string) ([]rdt.Option, func(), error) {
	cleanup := func() {}
	b, err := rdt.ParseBackend(store)
	if err != nil {
		return nil, cleanup, err
	}
	if b == rdt.BackendMem {
		return nil, cleanup, nil
	}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "rdtsim-store-")
		if err != nil {
			return nil, cleanup, err
		}
		dir, cleanup = tmp, func() { os.RemoveAll(tmp) }
	}
	return []rdt.Option{rdt.WithStorage(b, dir)}, cleanup, nil
}

// runLive drives the goroutine runtime with one worker per process.
func runLive(n, ops int, seed int64, tcp bool, crash int, useLI bool, storeOpts []rdt.Option) {
	cluster, err := rdt.NewCluster(n, rdt.Network{TCP: tcp, Seed: seed}, storeOpts...)
	exitOn(err)
	defer func() { _ = cluster.Close() }()

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(id)))
			node := cluster.Node(id)
			for k := 0; k < ops/n; k++ {
				if rng.Float64() < 0.25 {
					if err := node.Checkpoint(); err != nil {
						fmt.Fprintf(os.Stderr, "p%d: %v\n", id+1, err)
						return
					}
					continue
				}
				to := rng.Intn(n - 1)
				if to >= id {
					to++
				}
				if err := node.Send(to); err != nil {
					fmt.Fprintf(os.Stderr, "p%d: %v\n", id+1, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	cluster.Quiesce()

	transportName := "direct"
	if tcp {
		transportName = "tcp"
	}
	fmt.Printf("live cluster: n=%d ops≈%d transport=%s\n", n, ops, transportName)
	total := 0
	for i := 0; i < n; i++ {
		basic, forced, st := cluster.Node(i).Stats()
		fmt.Printf("  p%d: %d basic + %d forced checkpoints, %d stored (bound %d)\n",
			i+1, basic, forced, st.Live, n)
		total += st.Live
	}
	oracle := cluster.Oracle()
	fmt.Printf("stored total: %d; linearized events: %d; RD-trackable: %v\n",
		total, len(cluster.History().Ops), oracle.IsRDT())

	if crash >= 0 && crash < n {
		rep, err := cluster.Recover([]int{crash}, useLI)
		exitOn(err)
		fmt.Printf("recovery: crashed p%d, line=%v, rolled back %v\n", crash+1, rep.Line, rep.RolledBack)
	}
}

func ratio(a, b int) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return 1
	}
	return float64(a) / float64(b)
}

func collectedTotal(sys *rdt.System, n int) int {
	c := 0
	for i := 0; i < n; i++ {
		c += sys.StorageStats(i).Collected
	}
	return c
}

func parseWorkload(s string) (rdt.WorkloadKind, error) {
	for _, k := range workload.Kinds() {
		if strings.EqualFold(k.String(), s) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("rdtsim: unknown workload %q", s)
}

func parseProtocol(s string) (rdt.Protocol, error) {
	for _, p := range []rdt.Protocol{rdt.FDAS, rdt.FDI, rdt.CBR, rdt.Russell, rdt.BCS, rdt.NoProtocol} {
		if strings.EqualFold(p.String(), s) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("rdtsim: unknown protocol %q", s)
}

func parseCollector(s string) (rdt.Collector, error) {
	for _, c := range []rdt.Collector{rdt.RDTLGC, rdt.NoGC, rdt.SyncOptimal, rdt.RecoveryLineGC} {
		if strings.EqualFold(c.String(), s) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("rdtsim: unknown collector %q", s)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
