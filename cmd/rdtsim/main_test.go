package main

import (
	"testing"

	rdt "repro"
	"repro/internal/workload"
)

func TestParseWorkload(t *testing.T) {
	for _, k := range workload.Kinds() {
		got, err := parseWorkload(k.String())
		if err != nil || got != k {
			t.Errorf("parseWorkload(%q) = %v, %v", k.String(), got, err)
		}
	}
	if got, err := parseWorkload("UNIFORM"); err != nil || got != workload.Uniform {
		t.Errorf("case-insensitive parse failed: %v, %v", got, err)
	}
	if _, err := parseWorkload("nope"); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestParseProtocol(t *testing.T) {
	for _, p := range []rdt.Protocol{rdt.FDAS, rdt.FDI, rdt.CBR, rdt.Russell, rdt.BCS, rdt.NoProtocol} {
		got, err := parseProtocol(p.String())
		if err != nil || got != p {
			t.Errorf("parseProtocol(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := parseProtocol("paxos"); err == nil {
		t.Error("unknown protocol should fail")
	}
}

func TestParseCollector(t *testing.T) {
	for _, c := range []rdt.Collector{rdt.RDTLGC, rdt.NoGC, rdt.SyncOptimal, rdt.RecoveryLineGC} {
		got, err := parseCollector(c.String())
		if err != nil || got != c {
			t.Errorf("parseCollector(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := parseCollector("mark-sweep"); err == nil {
		t.Error("unknown collector should fail")
	}
}

func TestRatio(t *testing.T) {
	if ratio(1, 2) != 0.5 || ratio(0, 0) != 0 || ratio(3, 0) != 1 {
		t.Error("ratio edge cases wrong")
	}
}
