package main

import (
	"fmt"
	"os"

	"repro/internal/chaos"
	"repro/internal/storage"
)

// runTorture executes the storage crash-torture matrix from the command
// line — the same harness the CI torture lane runs via go test. -store
// selects one backend; the mem default runs both on-disk backends, since
// memory has no stable bytes to tear.
func runTorture(b storage.Backend, seeds, ops int) error {
	backends := []storage.Backend{storage.File, storage.Log}
	if b != storage.Mem {
		backends = []storage.Backend{b}
	}
	for _, be := range backends {
		for seed := int64(1); seed <= int64(seeds); seed++ {
			dir, err := os.MkdirTemp("", "rdt-torture-")
			if err != nil {
				return err
			}
			res, err := chaos.Torture(chaos.TortureConfig{
				Backend: be, Dir: dir, Ops: ops, Seed: seed,
			})
			os.RemoveAll(dir)
			if err != nil {
				return fmt.Errorf("torture %s seed %d: %w (after %s)", be, seed, err, res)
			}
			fmt.Printf("torture %-4s seed %d: %s\n", be, seed, res)
		}
	}
	return nil
}
