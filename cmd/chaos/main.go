// Command chaos renders the survivability table of EXPERIMENTS.md (E4): it
// executes seeded crash/restart fault plans against the live runtime —
// crash a process, drop its volatile state, keep its stable store, run
// survivor traffic into the hole, rehydrate from stable storage, recover —
// and verifies every recovery session against the ground-truth oracles
// before reporting it.
//
// The grid is fault pattern × system size × middleware stack
// (protocol+collector); cells are independent and run on the internal/sweep
// worker pool. Cells execute the engine in deterministic mode, so any
// -workers value renders a byte-identical text table. -format json adds
// per-cell timings and mean recovery latency; -bench runs the grid twice
// (serial, then parallel) and emits the comparison recorded in
// BENCH_chaos.json — the recovery-latency baseline later PRs must beat.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/storage"
	"repro/internal/sweep"

	// Registers the log backend with storage.Open for -store log.
	_ "repro/internal/storage/logstore"
)

func main() {
	var (
		patterns  = flag.String("patterns", "single,correlated,rolling,repeated", "comma-separated fault patterns")
		partition = flag.String("partition", "", "comma-separated partition patterns to add to the grid: split|flap|isolate|partition-recovery (run over the real TCP mesh; heal latency lands in the JSON and bench outputs)")
		sizes     = flag.String("sizes", "4,8", "comma-separated process counts")
		seeds     = flag.Int("seeds", 2, "seeded fault plans averaged per cell")
		cycles    = flag.Int("cycles", 4, "crash/restart cycles per run")
		ops       = flag.Int("ops", 150, "application operations per drive phase")
		pcheck    = flag.Float64("pcheckpoint", 0.2, "basic checkpoint probability")
		workers   = flag.Int("workers", runtime.NumCPU(), "worker pool size (result order does not depend on it)")
		format    = flag.String("format", "text", "output format: text|json")
		bench     = flag.Bool("bench", false, "run the grid serially and with -workers, emit the timing comparison as JSON")
		store     = flag.String("store", "mem", "stable-storage backend for observed runs and -torture: mem|file|log")
		torture   = flag.Bool("torture", false, "run the storage crash-torture matrix instead of the survivability grid")
	)
	var obsf observedFlags
	flag.BoolVar(&obsf.metrics, "metrics", false, "observed single run: print the metrics-registry snapshot")
	flag.StringVar(&obsf.traceOut, "trace-out", "", "observed single run: write the flight recording as JSONL to this file (- for stdout)")
	flag.BoolVar(&obsf.traceDiagram, "trace-diagram", false, "observed single run: render the flight recording as a space-time diagram")
	flag.StringVar(&obsf.debugHTTP, "debug-http", "", "observed single run: serve /metrics, /trace, expvar and pprof on this address")
	flag.Parse()

	pats, err := parsePatterns(*patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *partition != "" {
		parts, err := parsePatterns(*partition)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for _, p := range parts {
			if !p.UsesPartitions() {
				fmt.Fprintf(os.Stderr, "chaos: %s is not a partition pattern (want split|flap|isolate|partition-recovery)\n", p)
				os.Exit(2)
			}
		}
		pats = append(pats, parts...)
	}
	ns, err := sweep.ParseSizes(*sizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "chaos: unknown format %q\n", *format)
		os.Exit(2)
	}
	if *seeds < 1 {
		fmt.Fprintf(os.Stderr, "chaos: -seeds must be >= 1, got %d\n", *seeds)
		os.Exit(2)
	}
	if *cycles < 1 {
		fmt.Fprintf(os.Stderr, "chaos: -cycles must be >= 1, got %d\n", *cycles)
		os.Exit(2)
	}
	backend, err := storage.ParseBackend(*store)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *torture {
		if err := runTorture(backend, *seeds, *ops); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if obsf.active() {
		if *bench {
			fmt.Fprintln(os.Stderr, "chaos: -bench and the observed-run flags are mutually exclusive")
			os.Exit(2)
		}
		if err := runObserved(obsf, backend, pats[0], ns[0], *cycles, *ops, *pcheck); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	g := sweep.Default(sweep.Chaos)
	g.Patterns = pats
	g.Sizes = ns
	g.Seeds = *seeds
	g.Cycles = *cycles
	g.Ops = *ops
	g.PCheckpoint = *pcheck
	g.Workers = *workers
	if g.Workers <= 0 {
		g.Workers = runtime.NumCPU()
	}

	if *bench {
		formatSet := false
		flag.Visit(func(f *flag.Flag) { formatSet = formatSet || f.Name == "format" })
		if formatSet && *format != "json" {
			fmt.Fprintln(os.Stderr, "chaos: -bench always emits JSON; drop -format or use -format json")
			os.Exit(2)
		}
		if err := runBench(g); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	start := time.Now()
	results, err := g.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wall := time.Since(start)

	if *format == "json" {
		err = sweep.WriteJSON(os.Stdout, g, results, wall)
	} else {
		err = sweep.WriteText(os.Stdout, g.Table, results)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runBench times the same survivability grid serially and with the
// requested pool, checks the two text renderings are byte-identical — the
// determinism contract of the deterministic engine — and prints a
// sweep.BenchDoc whose rows carry the mean recovery latency per cell.
func runBench(g sweep.Grid) error {
	serial := g
	serial.Workers = 1
	t0 := time.Now()
	serialRes, err := serial.Run()
	if err != nil {
		return err
	}
	serialSecs := time.Since(t0).Seconds()

	t1 := time.Now()
	parallelRes, err := g.Run()
	if err != nil {
		return err
	}
	parallelWall := time.Since(t1)

	var a, b bytes.Buffer
	if err := sweep.WriteText(&a, g.Table, serialRes); err != nil {
		return err
	}
	if err := sweep.WriteText(&b, g.Table, parallelRes); err != nil {
		return err
	}

	doc := sweep.BenchDoc{
		Table:           g.Table.String(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Cells:           len(serialRes),
		SerialSecs:      serialSecs,
		ParallelWorkers: g.Workers,
		ParallelSecs:    parallelWall.Seconds(),
		Identical:       bytes.Equal(a.Bytes(), b.Bytes()),
		Run:             sweep.Doc(g, parallelRes, parallelWall),
	}
	if doc.ParallelSecs > 0 {
		doc.Speedup = doc.SerialSecs / doc.ParallelSecs
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func parsePatterns(s string) ([]chaos.Pattern, error) {
	if s == "" {
		return nil, fmt.Errorf("chaos: empty -patterns")
	}
	var out []chaos.Pattern
	for _, name := range strings.Split(s, ",") {
		p, err := chaos.ParsePattern(name)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
