package main

import (
	"fmt"
	"os"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/gc"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/storage"
	"repro/internal/trace"
)

// observedFlags gates the instrumented single-run mode: setting any of them
// replaces the survivability grid with one fully observed run.
type observedFlags struct {
	metrics      bool   // print the metrics-registry snapshot after the run
	traceOut     string // write the flight recording as JSONL ("-" = stdout)
	traceDiagram bool   // render the flight recording as a space-time diagram
	debugHTTP    string // serve /metrics, /trace, expvar and pprof during the run
}

func (f observedFlags) active() bool {
	return f.metrics || f.traceOut != "" || f.traceDiagram || f.debugHTTP != ""
}

// runObserved executes one instrumented survivability run — FDAS with
// RDT-LGC over the real TCP mesh, deterministic — and exports what the
// instruments captured. The grid's aggregate numbers answer "how well does
// it survive"; this mode answers "what exactly happened", one event and one
// counter at a time.
func runObserved(f observedFlags, backend storage.Backend, pat chaos.Pattern, n, cycles, ops int, pcheck float64) error {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(0)
	if f.debugHTTP != "" {
		ln, err := obs.ServeDebug(f.debugHTTP, reg, rec)
		if err != nil {
			return fmt.Errorf("chaos: debug listener: %w", err)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "chaos: debug listener on http://%s/\n", ln.Addr())
	}

	plan, err := chaos.NewPlan(chaos.PlanOptions{
		N: n, Pattern: pat, Cycles: cycles, Ops: ops, Seed: 1,
	})
	if err != nil {
		return err
	}
	cfg := chaos.Config{
		Protocol:      func(int) protocol.Protocol { return protocol.NewFDAS() },
		LocalGC:       func(self, n int, st storage.Store) gc.Local { return core.New(self, n, st) },
		GlobalLI:      true,
		Deterministic: true,
		PCheckpoint:   pcheck,
		RDT:           true,
		CheckNBound:   true,
		TCP:           true,
		Obs:           obs.Options{Registry: reg, Recorder: rec},
	}
	if backend != storage.Mem {
		dir, err := os.MkdirTemp("", "rdt-chaos-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cfg.NewStore = storage.Factory(backend, dir)
	}
	res, err := chaos.Run(cfg, plan)
	if err != nil {
		return err
	}
	fmt.Printf("observed run: %s n=%d FDAS+RDT-LGC over TCP, %s storage — %d crashes, %d recoveries verified, mean recovery %s\n",
		pat, n, backend, res.Crashes, res.Recoveries, res.MeanLatency())

	if f.metrics {
		fmt.Println()
		if err := reg.Snapshot().WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if f.traceDiagram {
		fmt.Println()
		fmt.Println(trace.Render(trace.FromEvents(n, rec.Events())))
		fmt.Println(trace.Legend())
	}
	if f.traceOut != "" {
		w := os.Stdout
		if f.traceOut != "-" {
			file, err := os.Create(f.traceOut)
			if err != nil {
				return err
			}
			defer file.Close()
			w = file
		}
		if err := rec.WriteJSONL(w); err != nil {
			return err
		}
		if f.traceOut != "-" {
			fmt.Fprintf(os.Stderr, "chaos: wrote %d events to %s (%d dropped by the ring)\n",
				rec.Len(), f.traceOut, rec.Dropped())
		}
	}
	return nil
}
