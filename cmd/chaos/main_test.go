package main

import (
	"reflect"
	"testing"

	"repro/internal/chaos"
)

func TestParsePatterns(t *testing.T) {
	got, err := parsePatterns("single,repeated")
	if err != nil {
		t.Fatal(err)
	}
	want := []chaos.Pattern{chaos.Single, chaos.Repeated}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parsePatterns = %v, want %v", got, want)
	}
	for _, bad := range []string{"", "nope", "single,", ",single", "single,,rolling"} {
		if _, err := parsePatterns(bad); err == nil {
			t.Errorf("parsePatterns(%q) should fail", bad)
		}
	}
}
