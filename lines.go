package rdt

import (
	"repro/internal/recovery"
)

// Targets names the local checkpoints a computed line must contain,
// mapping process → checkpoint index.
type Targets = recovery.Targets

// MinConsistentLine returns the minimum consistent global checkpoint of the
// pattern containing the targets — the restart line for causal distributed
// breakpoints (Wang 1997; the paper's Section 1 motivation for RDT).
func MinConsistentLine(c *CCP, targets Targets) ([]int, error) {
	return recovery.MinConsistent(c, targets)
}

// MaxConsistentLine returns the maximum consistent global checkpoint
// containing the targets — the restart line for software error recovery:
// roll back as little as possible while discarding the states tainted by
// the targets' successors.
func MaxConsistentLine(c *CCP, targets Targets) ([]int, error) {
	return recovery.MaxConsistent(c, targets)
}

// Extendable reports whether the targets can take part in any consistent
// global checkpoint (under RDT, exactly pairwise consistency).
func Extendable(c *CCP, targets Targets) bool {
	return recovery.Extendable(c, targets)
}

// MaxStoredLine returns the maximum consistent global checkpoint containing
// the targets that uses only checkpoints still present in stable storage.
// This is the line to feed RollbackToLine in a garbage-collected system:
// obsolescence is relative to failure recovery lines, so the unrestricted
// MaxConsistentLine may name checkpoints RDT-LGC has already collected.
func (s *System) MaxStoredLine(targets Targets) ([]int, error) {
	stored := make([][]int, s.n)
	for i := 0; i < s.n; i++ {
		stored[i] = s.Retained(i)
	}
	return recovery.MaxConsistentStored(s.Oracle(), targets, stored)
}

// RollbackToLine rolls the whole system back to an arbitrary consistent
// global checkpoint, running the collectors' Algorithm 3 handling on every
// process that moves to a stable component. Use MinConsistentLine or
// MaxConsistentLine to compute lines for software error recovery or
// distributed breakpoints; crash-driven recovery should use Recover, which
// derives the line per Lemma 1 itself.
func (s *System) RollbackToLine(line []int, globalLI bool) (RecoveryReport, error) {
	return s.r.ApplyLine(line, globalLI)
}
