package rdt

import (
	"fmt"
	"time"

	"repro/internal/gc"
	"repro/internal/runtime"
	"repro/internal/storage"

	icore "repro/internal/core"
)

// Network shapes the asynchronous in-process network of a live cluster.
type Network struct {
	// MinDelay and MaxDelay bound the uniformly random delivery delay.
	MinDelay, MaxDelay time.Duration
	// Loss is the probability a message is dropped in transit.
	Loss float64
	// Seed makes the loss/delay draws reproducible.
	Seed int64
	// TCP routes every message through a loopback TCP mesh instead of
	// direct in-process delivery.
	TCP bool
}

// Cluster is a live deployment: one goroutine-safe middleware node per
// process connected by an asynchronous network. Unlike System it is driven
// by concurrent application goroutines rather than scripts.
type Cluster struct {
	c *runtime.Cluster
}

// LiveNode is one process's middleware endpoint in a live cluster.
type LiveNode = runtime.Node

// LiveReport describes a live recovery session.
type LiveReport = runtime.Report

// NewCluster assembles a live cluster of n processes.
func NewCluster(n int, net Network, opt ...Option) (*Cluster, error) {
	o := defaults()
	for _, f := range opt {
		f(&o)
	}
	pf, err := o.protocol.factory()
	if err != nil {
		return nil, err
	}
	cfg := runtime.Config{
		N:        n,
		Protocol: pf,
		TCP:      net.TCP,
		Compress: o.compress,
		Obs:      o.obs,
		Net: runtime.NetworkOptions{
			MinDelay: net.MinDelay,
			MaxDelay: net.MaxDelay,
			Loss:     net.Loss,
			Seed:     net.Seed,
		},
	}
	switch o.collector {
	case RDTLGC:
		cfg.LocalGC = func(self, n int, st storage.Store) gc.Local { return icore.New(self, n, st) }
	case NoGC:
	default:
		return nil, fmt.Errorf("rdt: live clusters support RDTLGC and NoGC collectors, not %v", o.collector)
	}
	if cfg.NewStore, err = o.stores(); err != nil {
		return nil, err
	}
	c, err := runtime.NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	return &Cluster{c: c}, nil
}

// N returns the number of processes.
func (c *Cluster) N() int { return c.c.N() }

// Node returns process i's middleware endpoint.
func (c *Cluster) Node(i int) *LiveNode { return c.c.Node(i) }

// Quiesce blocks until every in-transit message is delivered or dropped.
// Stop sending before calling it.
func (c *Cluster) Quiesce() { c.c.Quiesce() }

// Recover crashes the faulty set and runs a centralized recovery session on
// the live cluster; in-transit messages are lost, exactly as a real failure
// would lose them. The faulty processes fail and rejoin within the session;
// for processes crashed earlier via Crash use Restart instead.
func (c *Cluster) Recover(faulty []int, globalLI bool) (LiveReport, error) {
	return c.c.Recover(faulty, globalLI)
}

// Crash fails process i in place: its volatile state is discarded, its
// stable store survives, and until Restart its methods refuse with
// runtime.ErrCrashed while messages addressed to it are lost. Survivors
// keep running against the hole in the mesh.
func (c *Cluster) Crash(i int) error { return c.c.Crash(i) }

// Down returns the currently crashed processes, in ascending order.
func (c *Cluster) Down() []int { return c.c.Down() }

// Restart rehydrates every crashed process from stable storage and runs a
// recovery session with exactly those processes as the faulty set,
// rejoining them to the mesh on a consistent recovery line.
func (c *Cluster) Restart(globalLI bool) (LiveReport, error) {
	return c.c.Restart(globalLI)
}

// Oracle rebuilds the ground-truth pattern from the linearized history of
// the concurrent execution.
func (c *Cluster) Oracle() *CCP { return c.c.Oracle() }

// BreakLink severs the directed mesh stream from "from" to "to" and blocks
// the pair until HealLink or HealAll. Frames in the cut park for
// retransmit and are replayed after the heal (TCP clusters; reports false
// otherwise).
func (c *Cluster) BreakLink(from, to int) bool { return c.c.BreakLink(from, to) }

// HealLink lifts one directed break and synchronously flushes the pair's
// parked frames back onto the wire. Reports whether the pair was blocked.
func (c *Cluster) HealLink(from, to int) bool { return c.c.HealLink(from, to) }

// Partition severs every directed pair crossing the given groups
// atomically; processes in no group form one implicit extra side, so
// Partition([][]int{{3}}) isolates process 3. TCP clusters only.
func (c *Cluster) Partition(groups [][]int) error { return c.c.Partition(groups) }

// HealAll lifts every break and partition and flushes every pair's parked
// backlog; HealAll followed by Quiesce observes the stranded traffic
// delivered. Returns how many directed pairs healed.
func (c *Cluster) HealAll() int { return c.c.HealAll() }

// PartitionedPairs reports how many directed pairs are currently severed.
func (c *Cluster) PartitionedPairs() int { return c.c.PartitionedPairs() }

// Close releases network resources (the TCP mesh, when enabled).
func (c *Cluster) Close() error { return c.c.Close() }

// History returns the linearized executed history.
func (c *Cluster) History() Script { return c.c.History() }
