package rdt_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	rdt "repro"
)

// TestObsInstrumentedSoak runs a live TCP cluster with full observability
// attached — metrics registry and flight recorder — through traffic, a
// crash and a restart, then checks the instruments saw the run: every layer
// reported nonzero counts, the flight recording parses as JSONL and renders
// as a space-time diagram.
func TestObsInstrumentedSoak(t *testing.T) {
	const n = 4
	reg := rdt.NewMetricsRegistry()
	rec := rdt.NewFlightRecorder(0)
	c, err := rdt.NewCluster(n, rdt.Network{TCP: true}, rdt.WithObservability(reg, rec))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	traffic := func(skip int) {
		for round := 0; round < 30; round++ {
			for p := 0; p < n; p++ {
				if p == skip {
					continue
				}
				to := (p + 1) % n
				if to == skip {
					to = (to + 1) % n
				}
				if err := c.Node(p).Send(to); err != nil {
					t.Fatalf("p%d send: %v", p, err)
				}
				if round%5 == 0 {
					if err := c.Node(p).Checkpoint(); err != nil {
						t.Fatalf("p%d checkpoint: %v", p, err)
					}
				}
			}
		}
		c.Quiesce()
	}

	traffic(-1)
	if err := c.Crash(1); err != nil {
		t.Fatal(err)
	}
	traffic(1) // survivors keep running against the hole
	if _, err := c.Restart(true); err != nil {
		t.Fatal(err)
	}
	traffic(-1)

	snap := reg.Snapshot()
	for _, name := range []string{
		"kernel.deliveries",
		"kernel.checkpoints.basic",
		"kernel.piggyback.entries",
		"runtime.sendpool.worker_spawns",
		"transport.batches",
		"transport.frames_sent",
		"transport.frames_delivered",
		"transport.bytes_out",
		"transport.dials",
		"storage.saves",
	} {
		if snap.Counter(name) == 0 {
			t.Errorf("counter %s is zero after an instrumented soak", name)
		}
	}
	if h, ok := snap.Histogram("storage.save_ns"); !ok || h.Count == 0 {
		t.Errorf("storage.save_ns histogram empty (ok=%v)", ok)
	}

	if rec.Len() == 0 {
		t.Fatal("flight recorder captured nothing")
	}
	kinds := map[string]bool{}
	for _, ev := range rec.Events() {
		kinds[ev.Kind.String()] = true
	}
	for _, want := range []string{"send", "deliver", "checkpoint", "crash", "restart"} {
		if !kinds[want] {
			t.Errorf("flight recording has no %q event; kinds seen: %v", want, kinds)
		}
	}

	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != rec.Len() {
		t.Fatalf("JSONL has %d lines, recorder holds %d events", len(lines), rec.Len())
	}
	for i, line := range lines {
		var span map[string]any
		if err := json.Unmarshal([]byte(line), &span); err != nil {
			t.Fatalf("JSONL line %d does not parse: %v\n%s", i, err, line)
		}
	}

	diagram := rdt.RenderFlight(n, rec)
	if strings.Contains(diagram, "invalid script") {
		t.Fatalf("flight recording did not render:\n%s", diagram)
	}
	if !strings.Contains(diagram, "s0>") || !strings.Contains(diagram, ">r0") {
		t.Errorf("diagram missing message endpoints:\n%s", diagram)
	}
}
