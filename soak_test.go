package rdt_test

import (
	"math/rand"
	"testing"

	rdt "repro"
)

// TestSoak is the long-haul integration test: many epochs of random
// workloads interleaved with crash recoveries, software-error rollbacks and
// protocol/collector permutations, validating the full oracle suite at
// every epoch boundary. It is the closest thing to running the system in
// production for a while.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	protocols := []rdt.Protocol{rdt.FDAS, rdt.FDI, rdt.CBR, rdt.Russell}
	rng := rand.New(rand.NewSource(20260612))
	for _, proto := range protocols {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			n := 3 + rng.Intn(4)
			sys, err := rdt.New(n, rdt.WithProtocol(proto))
			if err != nil {
				t.Fatal(err)
			}
			kinds := []rdt.WorkloadKind{rdt.Uniform, rdt.Ring, rdt.ClientServer, rdt.Bursty, rdt.AllToAll}
			for epoch := 0; epoch < 12; epoch++ {
				kind := kinds[rng.Intn(len(kinds))]
				script := rdt.Workload(kind, rdt.WorkloadOptions{
					N: n, Ops: 150 + rng.Intn(250), Seed: rng.Int63(),
					PCheckpoint: 0.05 + rng.Float64()*0.4,
				})
				if err := sys.Run(script); err != nil {
					t.Fatalf("epoch %d (%s): %v", epoch, kind, err)
				}

				oracle := sys.Oracle()
				if v, bad := oracle.FirstRDTViolation(); bad {
					t.Fatalf("epoch %d: pattern not RDT: %v", epoch, v)
				}
				for i := 0; i < n; i++ {
					retained := sys.Retained(i)
					if len(retained) > n {
						t.Fatalf("epoch %d: p%d retains %d > n", epoch, i, len(retained))
					}
					stored := map[int]bool{}
					for _, idx := range retained {
						stored[idx] = true
					}
					for g := 0; g <= oracle.LastStable(i); g++ {
						if !stored[g] && !oracle.Obsolete(i, g) {
							t.Fatalf("epoch %d: p%d collected non-obsolete s^%d", epoch, i, g)
						}
					}
				}

				// Every third epoch something goes wrong.
				switch epoch % 3 {
				case 0:
					faulty := []int{rng.Intn(n)}
					if rng.Intn(2) == 0 {
						f2 := rng.Intn(n)
						if f2 != faulty[0] {
							faulty = append(faulty, f2)
						}
					}
					if _, err := sys.Recover(faulty, rng.Intn(2) == 0); err != nil {
						t.Fatalf("epoch %d: recover: %v", epoch, err)
					}
				case 1:
					// Software error recovery at a random process.
					// Roll back to p's last stable checkpoint: always
					// feasible, because the single-fault recovery line
					// R_{p} passes through it and is never collected.
					// Deeper targets may be unreachable in a collected
					// system (TestMaxStoredLineDepth pins both cases).
					p := rng.Intn(n)
					retained := sys.Retained(p)
					target := rdt.Targets{p: retained[len(retained)-1]}
					line, err := sys.MaxStoredLine(target)
					if err != nil {
						t.Fatalf("epoch %d: max stored line: %v", epoch, err)
					}
					if _, err := sys.RollbackToLine(line, true); err != nil {
						t.Fatalf("epoch %d: rollback to %v: %v", epoch, line, err)
					}
				}
			}
		})
	}
}
