package rdt_test

import (
	"reflect"
	"testing"
	"time"

	rdt "repro"
)

// TestCompressionLiveCluster checks WithCompression means the same thing in
// the live engine as in the simulator: a compressed live cluster works end
// to end and keeps its vectors consistent with the replayed history.
func TestCompressionLiveCluster(t *testing.T) {
	c, err := rdt.NewCluster(3, rdt.Network{MaxDelay: 100 * time.Microsecond, Seed: 11},
		rdt.WithCompression())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for op := 0; op < 60; op++ {
		p := op % 3
		if op%7 == 0 {
			if err := c.Node(p).Checkpoint(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := c.Node(p).Send((p + 1) % 3); err != nil {
			t.Fatal(err)
		}
	}
	c.Quiesce()
	if v, bad := c.Oracle().FirstRDTViolation(); bad {
		t.Fatalf("compressed live pattern not RDT: %v", v)
	}
}

// TestCompressionConfigErrors checks every assembly the kernel cannot honor
// is refused loudly at configuration time instead of corrupting causal
// knowledge at delivery time.
func TestCompressionConfigErrors(t *testing.T) {
	// A lossy live network under compression: deltas cannot survive loss.
	if _, err := rdt.NewCluster(3, rdt.Network{Loss: 0.05}, rdt.WithCompression()); err == nil {
		t.Error("compressed live cluster with loss should be rejected")
	}
	// A lossy chaos baseline under compression.
	plan, err := rdt.NewChaosPlan(rdt.ChaosPlanOptions{
		N: 3, Pattern: rdt.ChaosSingle, Cycles: 2, Ops: 30, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rdt.RunChaos(plan, rdt.Network{Loss: 0.02}, rdt.WithCompression()); err == nil {
		t.Error("compressed chaos run with a lossy baseline should be rejected")
	}
}

// TestCompressionChaos is the compression × live-concurrency × chaos
// scenario family: a seeded crash/restart plan (including delay bursts)
// executed on a compressed live cluster, every recovery session verified
// against the ground-truth oracles, and the whole run deterministic.
func TestCompressionChaos(t *testing.T) {
	plan, err := rdt.NewChaosPlan(rdt.ChaosPlanOptions{
		N: 4, Pattern: rdt.ChaosRolling, Cycles: 3, Ops: 50, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func() rdt.ChaosResult {
		r, err := rdt.RunChaos(plan, rdt.Network{Seed: 7},
			rdt.WithCompression(),
			rdt.WithProtocol(rdt.FDAS), rdt.WithCollector(rdt.RDTLGC))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Recoveries != plan.Recoveries() {
		t.Fatalf("ran %d recoveries, plan schedules %d", a.Recoveries, plan.Recoveries())
	}
	a.Latency, b.Latency = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two compressed chaos runs of the same plan diverged:\n%+v\n%+v", a, b)
	}
}

// TestCompressionMeansTheSameEverywhere checks the facade accepts
// WithCompression for every engine assembly that can honor it: simulated
// systems (existing behaviour) and live clusters (previously silently
// ignored), with identical option spelling.
func TestCompressionMeansTheSameEverywhere(t *testing.T) {
	sys, err := rdt.New(3, rdt.WithCompression())
	if err != nil {
		t.Fatal(err)
	}
	// Client-server traffic delivers immediately, hence FIFO per pair —
	// the channel model compression requires of scripts.
	script := rdt.Workload(rdt.ClientServer, rdt.WorkloadOptions{N: 3, Ops: 200, Seed: 2})
	if err := sys.Run(script); err != nil {
		t.Fatal(err)
	}
	if sys.Stats().PiggybackEntries == 0 {
		t.Error("compressed simulated system piggybacked nothing")
	}
	c, err := rdt.NewCluster(3, rdt.Network{Seed: 2}, rdt.WithCompression())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Node(0).Send(1); err != nil {
		t.Fatal(err)
	}
	c.Quiesce()
}
