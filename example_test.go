package rdt_test

import (
	"fmt"

	rdt "repro"
)

// ExampleNew shows the basic simulation loop: build a system, run a
// workload, inspect stable storage.
func ExampleNew() {
	sys, err := rdt.New(3, rdt.WithProtocol(rdt.FDAS), rdt.WithCollector(rdt.RDTLGC))
	if err != nil {
		fmt.Println(err)
		return
	}
	// The exact Figure 4 execution from the paper.
	if err := sys.Run(rdt.Figure4()); err != nil {
		fmt.Println(err)
		return
	}
	for i := 0; i < 3; i++ {
		fmt.Printf("p%d retains %v\n", i+1, sys.Retained(i))
	}
	// Output:
	// p1 retains [0]
	// p2 retains [0 1 3]
	// p3 retains [0 3]
}

// ExampleSystem_Recover crashes a process on the Figure 4 pattern and shows
// the Lemma 1 recovery line.
func ExampleSystem_Recover() {
	sys, err := rdt.New(3)
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := sys.Run(rdt.Figure4()); err != nil {
		fmt.Println(err)
		return
	}
	rep, err := sys.Recover([]int{2}, true) // p3 fails
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("line:", rep.Line)
	fmt.Println("rolled back:", rep.RolledBack)
	// Output:
	// line: [1 4 3]
	// rolled back: [2]
}

// ExampleWorstCase demonstrates the tight Section 4.5 bound.
func ExampleWorstCase() {
	sys, err := rdt.New(4)
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := sys.Run(rdt.WorstCase(4)); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(sys.RetainedCounts())
	// Output:
	// [4 4 4 4]
}
